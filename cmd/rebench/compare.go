package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// compareReports is the perf gate: it loads two rebench reports, matches
// their runs by (alias, tech), and fails when the new report regresses
// beyond tolerance. Two budgets are enforced per matched run:
//
//   - throughput: new frames/sec must stay above old * (1 - maxRegress);
//   - allocator discipline: new allocs/frame must stay below
//     old * (1 + maxRegress) + allocSlack. The additive slack keeps the
//     gate meaningful when old is near zero (the goal state), where a
//     purely multiplicative bound would reject runtime noise.
//
// Runs present on only one side are reported but never fail the gate, so
// the benchmark matrix can grow without invalidating the trajectory.
func compareReports(stdout *os.File, oldPath, newPath string, maxRegress float64) error {
	// Host-noise floor for the allocator bound: goroutine bookkeeping,
	// timer wheels and GC metadata move a handful of objects per frame
	// between otherwise identical runs.
	const allocSlack = 64.0

	oldRep, err := loadReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		return err
	}

	type key struct{ alias, tech string }
	oldRuns := make(map[key]Run, len(oldRep.Runs))
	for _, r := range oldRep.Runs {
		oldRuns[key{r.Alias, r.Tech}] = r
	}

	failures := 0
	matched := 0
	for _, nr := range newRep.Runs {
		or, ok := oldRuns[key{nr.Alias, nr.Tech}]
		if !ok {
			fmt.Fprintf(stdout, "NEW   %-4s %-5s %8.1f frames/s (no baseline run)\n", nr.Alias, nr.Tech, nr.FramesPerSec)
			continue
		}
		matched++
		delete(oldRuns, key{nr.Alias, nr.Tech})

		fpsFloor := or.FramesPerSec * (1 - maxRegress)
		fpsOK := nr.FramesPerSec >= fpsFloor
		// Reports from before the allocator columns existed carry zeros;
		// a zero baseline with a nonzero measurement would always "fail",
		// so the alloc bound only applies once the baseline records it.
		allocCeil := or.AllocsPerFrame*(1+maxRegress) + allocSlack
		allocOK := or.AllocsPerFrame == 0 || nr.AllocsPerFrame <= allocCeil

		verdict := "ok   "
		if !fpsOK || !allocOK {
			verdict = "FAIL "
			failures++
		}
		fmt.Fprintf(stdout, "%s %-4s %-5s  fps %8.1f -> %8.1f (floor %8.1f)  allocs/frame %9.1f -> %9.1f",
			verdict, nr.Alias, nr.Tech, or.FramesPerSec, nr.FramesPerSec, fpsFloor, or.AllocsPerFrame, nr.AllocsPerFrame)
		if or.AllocsPerFrame > 0 {
			fmt.Fprintf(stdout, " (ceil %9.1f)", allocCeil)
		}
		fmt.Fprintln(stdout)
	}
	// Sorted so the report is byte-stable run to run (map order is random).
	gone := make([]key, 0, len(oldRuns))
	for k := range oldRuns {
		gone = append(gone, k)
	}
	sort.Slice(gone, func(i, j int) bool {
		if gone[i].alias != gone[j].alias {
			return gone[i].alias < gone[j].alias
		}
		return gone[i].tech < gone[j].tech
	})
	for _, k := range gone {
		fmt.Fprintf(stdout, "GONE  %-4s %-5s (in baseline only)\n", k.alias, k.tech)
	}

	if matched == 0 {
		return fmt.Errorf("no runs in common between %s and %s", oldPath, newPath)
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d matched runs regressed beyond %.0f%%", failures, matched, maxRegress*100)
	}
	fmt.Fprintf(stdout, "compare: %d matched runs within tolerance (-max-regress %.2f)\n", matched, maxRegress)
	return nil
}

func loadReport(path string) (*Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Schema != "rebench/1" {
		return nil, fmt.Errorf("%s: unknown schema %q", path, rep.Schema)
	}
	return &rep, nil
}
