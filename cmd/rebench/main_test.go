package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Smoke mode must produce a parseable BENCH_1.json with real measurements
// and a demonstrated elimination pass; a second run appends BENCH_2.json.
func TestSmokeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	dir := t.TempDir()
	if err := run([]string{"-smoke", "-out", dir}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_1.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "rebench/1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	// generated_at must be a parseable ISO-8601 timestamp stamped at write
	// time; git_revision must match the repo's HEAD (tests run from a
	// checkout, so the git fallback always resolves).
	if _, err := time.Parse(time.RFC3339, rep.GeneratedAt); err != nil {
		t.Errorf("generated_at %q is not RFC 3339: %v", rep.GeneratedAt, err)
	}
	if want := gitRevision(); want != "" && rep.GitRevision != want {
		t.Errorf("git_revision = %q, want %q", rep.GitRevision, want)
	}
	// smoke = ccs,mst × base,re
	if len(rep.Runs) != 4 {
		t.Fatalf("runs = %d, want 4", len(rep.Runs))
	}
	for _, r := range rep.Runs {
		if r.Frames != 4 {
			t.Errorf("%s/%s frames = %d, want 4", r.Alias, r.Tech, r.Frames)
		}
		if r.FramesPerSec <= 0 || r.WallSeconds <= 0 {
			t.Errorf("%s/%s throughput not measured: %+v", r.Alias, r.Tech, r)
		}
		if r.Cycles == 0 || r.TilesTotal == 0 {
			t.Errorf("%s/%s missing simulator stats: %+v", r.Alias, r.Tech, r)
		}
		if len(r.StageCycles) == 0 {
			t.Errorf("%s/%s missing per-stage cycles", r.Alias, r.Tech)
		}
		if r.Tech == "re" && r.Alias == "ccs" && r.TileSkipFraction <= 0 {
			t.Errorf("static-camera ccs under RE skipped no tiles: %+v", r)
		}
	}
	// The elimination pass resubmits the whole matrix: half of all
	// submissions are eliminated.
	if rep.Totals.JobEliminationRatio != 0.5 {
		t.Errorf("job elimination ratio = %v, want 0.5", rep.Totals.JobEliminationRatio)
	}
	if rep.Totals.JobsSubmitted != 8 || rep.Totals.JobsDeduped != 4 {
		t.Errorf("totals = %+v", rep.Totals)
	}

	// Second invocation picks the next index instead of overwriting.
	if err := run([]string{"-smoke", "-out", dir, "-benchmarks", "ccs", "-techs", "re"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_2.json")); err != nil {
		t.Errorf("second run did not create BENCH_2.json: %v", err)
	}
}

// Bad flags fail cleanly.
func TestBadInputs(t *testing.T) {
	if err := run([]string{"-benchmarks", "nope", "-smoke", "-out", t.TempDir()}, os.Stdout); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if err := run([]string{"-techs", "quantum", "-smoke", "-out", t.TempDir()}, os.Stdout); err == nil {
		t.Error("unknown technique accepted")
	}
}

// writeReport drops a minimal rebench/1 report with the given runs.
func writeReport(t *testing.T, dir, name string, runs []Run) string {
	t.Helper()
	rep := Report{Schema: "rebench/1", Runs: runs}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCompareGate: the -compare mode passes runs within tolerance and fails
// throughput or allocator regressions beyond it.
func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := []Run{
		{Alias: "ccs", Tech: "re", FramesPerSec: 100, AllocsPerFrame: 50},
		{Alias: "mst", Tech: "base", FramesPerSec: 80, AllocsPerFrame: 40},
	}
	old := writeReport(t, dir, "old.json", base)

	// Within tolerance: 5% slower, allocs flat.
	ok := writeReport(t, dir, "ok.json", []Run{
		{Alias: "ccs", Tech: "re", FramesPerSec: 95, AllocsPerFrame: 50},
		{Alias: "mst", Tech: "base", FramesPerSec: 80, AllocsPerFrame: 45},
	})
	if err := run([]string{"-compare", old, ok}, os.Stdout); err != nil {
		t.Errorf("within-tolerance compare failed: %v", err)
	}

	// Throughput regression beyond 10%.
	slow := writeReport(t, dir, "slow.json", []Run{
		{Alias: "ccs", Tech: "re", FramesPerSec: 85, AllocsPerFrame: 50},
		{Alias: "mst", Tech: "base", FramesPerSec: 80, AllocsPerFrame: 40},
	})
	if err := run([]string{"-compare", old, slow}, os.Stdout); err == nil {
		t.Error("15% throughput regression passed the gate")
	}

	// Allocator regression: far beyond the multiplicative + slack bound.
	leaky := writeReport(t, dir, "leaky.json", []Run{
		{Alias: "ccs", Tech: "re", FramesPerSec: 100, AllocsPerFrame: 5000},
		{Alias: "mst", Tech: "base", FramesPerSec: 80, AllocsPerFrame: 40},
	})
	if err := run([]string{"-compare", old, leaky}, os.Stdout); err == nil {
		t.Error("100x allocs/frame regression passed the gate")
	}

	// A zero-alloc baseline (pre-column report) never arms the alloc bound.
	legacyOld := writeReport(t, dir, "legacy.json", []Run{
		{Alias: "ccs", Tech: "re", FramesPerSec: 100},
	})
	if err := run([]string{"-compare", legacyOld, leaky}, os.Stdout); err != nil {
		t.Errorf("legacy baseline armed the alloc bound: %v", err)
	}

	// Disjoint matrices are an error, not a silent pass.
	other := writeReport(t, dir, "other.json", []Run{
		{Alias: "cde", Tech: "te", FramesPerSec: 10},
	})
	if err := run([]string{"-compare", old, other}, os.Stdout); err == nil {
		t.Error("disjoint reports compared clean")
	}
	// Wrong arity fails cleanly.
	if err := run([]string{"-compare", old}, os.Stdout); err == nil {
		t.Error("-compare with one path accepted")
	}
}
