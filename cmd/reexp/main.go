// Command reexp reproduces every table and figure of the paper's evaluation
// in one run. Each figure prints as a labeled table whose rows mirror the
// paper's bars/series.
//
// Usage:
//
//	reexp [-width 480] [-height 272] [-frames 50] [-seed 1] [-figs all] [-workers N]
//	      [-tracefile out.trace.json] [-cpuprofile cpu.pprof] [-log-level info]
//
// -figs takes a comma-separated subset of:
//
//	1 2 t1 t2 14a 14b 15a 15b 16 17a 17b overhead hash otq memolut refresh binning subblock
//
// -tracefile records every distinct simulation of the run (one track per
// (benchmark, technique) pair) as a Chrome trace-event timeline for
// Perfetto/chrome://tracing; -cpuprofile records a Go CPU profile of the
// harness itself.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"rendelim/internal/exp"
	"rendelim/internal/gpusim"
	"rendelim/internal/obs"
	"rendelim/internal/stats"
	"rendelim/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "reexp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("reexp", flag.ContinueOnError)
	width := fs.Int("width", 480, "screen width in pixels")
	height := fs.Int("height", 272, "screen height in pixels")
	frames := fs.Int("frames", 50, "frames per benchmark")
	seed := fs.Int64("seed", 1, "workload seed")
	figs := fs.String("figs", "all", "comma-separated figure list or 'all'")
	csvDir := fs.String("csv", "", "also write each figure as CSV into this directory")
	workers := fs.Int("workers", 0, "concurrent simulation workers (0 = host CPUs / tile-workers)")
	tileWorkers := fs.Int("tile-workers", 0, "raster-phase goroutines per simulation (0/1 = serial, -1 = one per CPU); never changes results")
	tracefile := fs.String("tracefile", "", "write a Chrome trace-event pipeline timeline to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a Go CPU profile to this file")
	logLevel := fs.String("log-level", "", "log level: debug, info, warn, error (default info; env "+obs.EnvLogLevel+")")
	if err := fs.Parse(args); err != nil {
		return err
	}
	log, err := obs.Setup(*logLevel, "")
	if err != nil {
		return err
	}

	if *cpuprofile != "" {
		pf, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer pf.Close()
		if err := pprof.StartCPUProfile(pf); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	p := workload.Params{Width: *width, Height: *height, Frames: *frames, Seed: *seed}
	r := exp.NewRunnerTileWorkers(p, *workers, *tileWorkers)
	var tracer *obs.Tracer
	if *tracefile != "" {
		tracer = obs.NewTracer()
		r.SetTracer(tracer)
	}

	type figure struct {
		id    string
		table func() *stats.Table
		text  func() string
	}
	all := []figure{
		{id: "t1", text: r.TableI},
		{id: "t2", text: r.TableII},
		{id: "1", table: r.Fig01},
		{id: "2", table: r.Fig02},
		{id: "14a", table: r.Fig14a},
		{id: "14b", table: r.Fig14b},
		{id: "15a", table: r.Fig15a},
		{id: "15b", table: r.Fig15b},
		{id: "16", table: r.Fig16},
		{id: "17a", table: r.Fig17a},
		{id: "17b", table: r.Fig17b},
		{id: "overhead", table: r.Overhead},
		{id: "hash", table: r.HashAblation},
		{id: "otq", table: r.OTQueueAblation},
		{id: "memolut", table: r.MemoLUTAblation},
		{id: "refresh", table: r.RefreshAblation},
		{id: "binning", table: r.BinningAblation},
		{id: "subblock", table: r.SubblockTradeoff},
	}

	want := map[string]bool{}
	if *figs != "all" {
		// Validate in argument order, not map order: with several unknown
		// ids the reported one used to follow randomized map iteration.
		for _, f := range strings.Split(*figs, ",") {
			f = strings.TrimSpace(f)
			want[f] = true
			found := false
			for _, fig := range all {
				if fig.id == f {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("unknown figure %q", f)
			}
		}
	}
	selected := func(id string) bool { return *figs == "all" || want[id] }

	// Warm the shared runs in parallel when the main comparison figures are
	// requested.
	needMain := false
	for _, id := range []string{"1", "2", "14a", "14b", "15a", "15b", "16", "17a", "17b", "overhead"} {
		if selected(id) {
			needMain = true
		}
	}
	start := time.Now()
	if needMain {
		log.Info("running suite", "width", p.Width, "height", p.Height,
			"frames", p.Frames, "workers", *workers)
		r.Prefetch(exp.SuiteAliases(), []gpusim.Technique{gpusim.Baseline, gpusim.RE, gpusim.TE, gpusim.Memo})
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}
	for _, fig := range all {
		if !selected(fig.id) {
			continue
		}
		figStart := time.Now()
		if fig.text != nil {
			fmt.Println(fig.text())
			log.Info("figure done", "fig", fig.id, "elapsed", time.Since(figStart).Round(time.Millisecond))
			continue
		}
		t := fig.table()
		log.Info("figure done", "fig", fig.id, "elapsed", time.Since(figStart).Round(time.Millisecond))
		t.Fprint(os.Stdout, 3)
		if *csvDir != "" {
			f, err := os.Create(fmt.Sprintf("%s/fig%s.csv", *csvDir, fig.id))
			if err == nil {
				err = t.WriteCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return err
			}
		}
	}
	if tracer != nil {
		if err := tracer.WriteFile(*tracefile); err != nil {
			return err
		}
		log.Info("pipeline trace written", "file", *tracefile, "events", tracer.Len())
	}
	// Report job elimination the way the simulator reports tile elimination:
	// figures re-request the same (benchmark, technique) runs, and the pool's
	// signature cache discards those re-runs before they enter the pipeline.
	m := r.Pool().Metrics()
	log.Info("jobs summary", "submitted", m.Submitted.Load(),
		"eliminated", m.Deduped.Load(),
		"elimination_ratio", fmt.Sprintf("%.3f", m.EliminationRatio()),
		"simulated", m.Completed.Load())
	log.Info("done", "elapsed", time.Since(start).Round(time.Millisecond))
	return nil
}
