// Command reexp reproduces every table and figure of the paper's evaluation
// in one run. Each figure prints as a labeled table whose rows mirror the
// paper's bars/series.
//
// Usage:
//
//	reexp [-width 480] [-height 272] [-frames 50] [-seed 1] [-figs all] [-workers N]
//
// -figs takes a comma-separated subset of:
//
//	1 2 t1 t2 14a 14b 15a 15b 16 17a 17b overhead hash otq memolut refresh binning subblock
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"rendelim/internal/exp"
	"rendelim/internal/gpusim"
	"rendelim/internal/stats"
	"rendelim/internal/workload"
)

func main() {
	width := flag.Int("width", 480, "screen width in pixels")
	height := flag.Int("height", 272, "screen height in pixels")
	frames := flag.Int("frames", 50, "frames per benchmark")
	seed := flag.Int64("seed", 1, "workload seed")
	figs := flag.String("figs", "all", "comma-separated figure list or 'all'")
	csvDir := flag.String("csv", "", "also write each figure as CSV into this directory")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	flag.Parse()

	p := workload.Params{Width: *width, Height: *height, Frames: *frames, Seed: *seed}
	r := exp.NewRunnerWorkers(p, *workers)

	type figure struct {
		id    string
		table func() *stats.Table
		text  func() string
	}
	all := []figure{
		{id: "t1", text: r.TableI},
		{id: "t2", text: r.TableII},
		{id: "1", table: r.Fig01},
		{id: "2", table: r.Fig02},
		{id: "14a", table: r.Fig14a},
		{id: "14b", table: r.Fig14b},
		{id: "15a", table: r.Fig15a},
		{id: "15b", table: r.Fig15b},
		{id: "16", table: r.Fig16},
		{id: "17a", table: r.Fig17a},
		{id: "17b", table: r.Fig17b},
		{id: "overhead", table: r.Overhead},
		{id: "hash", table: r.HashAblation},
		{id: "otq", table: r.OTQueueAblation},
		{id: "memolut", table: r.MemoLUTAblation},
		{id: "refresh", table: r.RefreshAblation},
		{id: "binning", table: r.BinningAblation},
		{id: "subblock", table: r.SubblockTradeoff},
	}

	want := map[string]bool{}
	if *figs != "all" {
		for _, f := range strings.Split(*figs, ",") {
			want[strings.TrimSpace(f)] = true
		}
		for f := range want {
			found := false
			for _, fig := range all {
				if fig.id == f {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "reexp: unknown figure %q\n", f)
				os.Exit(2)
			}
		}
	}
	selected := func(id string) bool { return *figs == "all" || want[id] }

	// Warm the shared runs in parallel when the main comparison figures are
	// requested.
	needMain := false
	for _, id := range []string{"1", "2", "14a", "14b", "15a", "15b", "16", "17a", "17b", "overhead"} {
		if selected(id) {
			needMain = true
		}
	}
	start := time.Now()
	if needMain {
		fmt.Fprintf(os.Stderr, "reexp: running suite at %dx%d, %d frames on %d workers...\n",
			p.Width, p.Height, p.Frames, *workers)
		r.Prefetch(exp.SuiteAliases(), []gpusim.Technique{gpusim.Baseline, gpusim.RE, gpusim.TE, gpusim.Memo})
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "reexp:", err)
			os.Exit(1)
		}
	}
	for _, fig := range all {
		if !selected(fig.id) {
			continue
		}
		figStart := time.Now()
		if fig.text != nil {
			fmt.Println(fig.text())
			fmt.Fprintf(os.Stderr, "reexp: fig %s in %s\n", fig.id, time.Since(figStart).Round(time.Millisecond))
			continue
		}
		t := fig.table()
		fmt.Fprintf(os.Stderr, "reexp: fig %s in %s\n", fig.id, time.Since(figStart).Round(time.Millisecond))
		t.Fprint(os.Stdout, 3)
		if *csvDir != "" {
			f, err := os.Create(fmt.Sprintf("%s/fig%s.csv", *csvDir, fig.id))
			if err == nil {
				err = t.WriteCSV(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "reexp:", err)
				os.Exit(1)
			}
		}
	}
	// Report job elimination the way the simulator reports tile elimination:
	// figures re-request the same (benchmark, technique) runs, and the pool's
	// signature cache discards those re-runs before they enter the pipeline.
	m := r.Pool().Metrics()
	fmt.Fprintf(os.Stderr, "reexp: jobs %d submitted, %d eliminated (%.1f%%), %d simulated\n",
		m.Submitted.Load(), m.Deduped.Load(), m.EliminationRatio()*100, m.Completed.Load())
	fmt.Fprintf(os.Stderr, "reexp: done in %s\n", time.Since(start).Round(time.Millisecond))
}
