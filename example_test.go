package rendelim_test

import (
	"fmt"

	"rendelim"
)

// ExampleRun builds a benchmark trace and compares the baseline GPU against
// Rendering Elimination on it.
func ExampleRun() {
	params := rendelim.Params{Width: 128, Height: 96, Frames: 6, Seed: 1}
	trace, err := rendelim.Build("cde", params)
	if err != nil {
		panic(err)
	}
	base, _ := rendelim.Run(trace, rendelim.WithTechnique(rendelim.Baseline))
	re, _ := rendelim.Run(trace, rendelim.WithTechnique(rendelim.RE))
	fmt.Printf("RE renders fewer fragments: %v\n", re.Total.FragsShaded < base.Total.FragsShaded)
	fmt.Printf("RE uses fewer cycles: %v\n", re.Total.TotalCycles() < base.Total.TotalCycles())
	// Output:
	// RE renders fewer fragments: true
	// RE uses fewer cycles: true
}

// ExampleTechnique_SkippedStages shows the Figure 3 stage comparison.
func ExampleTechnique_SkippedStages() {
	fmt.Println("TE skips:", rendelim.TE.SkippedStages())
	fmt.Println("RE skips:", rendelim.RE.SkippedStages())
	// Output:
	// TE skips: [tile-flush]
	// RE skips: [tile-scheduler rasterizer early-depth fragment-processing blend tile-flush]
}

// ExampleBuild lists the benchmark suite of Table II.
func ExampleBuild() {
	for _, b := range rendelim.Benchmarks()[:3] {
		fmt.Printf("%s: %s (%s)\n", b.Alias, b.Name, b.Type)
	}
	// Output:
	// ccs: Candy Crush Saga (2D)
	// cde: Castle Defense (2D)
	// coc: Clash of Clans (3D)
}

// ExampleQuadVerts authors a minimal custom trace against the public API and
// verifies that a static scene becomes fully redundant once the
// double-buffered Signature Buffer has a baseline.
func ExampleQuadVerts() {
	tr := &rendelim.Trace{
		Name: "static-quad", Width: 64, Height: 64,
		Programs: rendelim.StandardPrograms(),
		Textures: []rendelim.TextureSpec{{
			Kind: rendelim.TexChecker, W: 8, H: 8, Cell: 2,
			A: rendelim.V4(1, 0, 0, 1), B: rendelim.V4(0, 0, 1, 1),
		}},
	}
	for f := 0; f < 4; f++ {
		tr.Frames = append(tr.Frames, rendelim.Frame{Commands: []rendelim.Command{
			rendelim.MVPUniforms(rendelim.Ortho(0, 64, 0, 64, -1, 1)),
			rendelim.SetUniforms{First: 4, Values: []rendelim.Vec4{rendelim.V4(1, 1, 1, 1)}},
			rendelim.SetPipeline{VS: rendelim.ProgTransformVS, FS: rendelim.ProgTexFS},
			rendelim.Draw{NumAttrs: 3, Data: rendelim.QuadVerts(nil, 0, 0, 64, 64, 0, rendelim.V4(1, 1, 1, 1))},
		}})
	}
	res, _ := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	for i, fs := range res.Frames {
		fmt.Printf("frame %d: %d/%d tiles skipped\n", i, fs.TilesSkipped, fs.TilesTotal)
	}
	// Output:
	// frame 0: 0/16 tiles skipped
	// frame 1: 0/16 tiles skipped
	// frame 2: 16/16 tiles skipped
	// frame 3: 16/16 tiles skipped
}
