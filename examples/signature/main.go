// Signature-unit walkthrough: drive the Rendering Elimination controller
// directly with a synthetic command stream — no GPU simulation — to watch
// incremental CRC32 tile signatures detect a moved sprite. This is the
// paper's Figure 6 example made executable.
//
//	go run ./examples/signature
package main

import (
	"fmt"

	"rendelim/internal/core"
	"rendelim/internal/sig"
)

func main() {
	// A 4-tile screen, as in Figure 6.
	ctl := core.New(core.Config{Sig: sig.DefaultConfig()}, 4)

	constantsF := []byte("drawcall-F-constants")
	constantsS := []byte("drawcall-S-constants")
	primC := []byte("primitive-C-attributes-48-bytes-of-vertex-data!!")
	primA := []byte("primitive-A-attributes-48-bytes-of-vertex-data!!")
	primB := []byte("primitive-B-attributes-48-bytes-of-vertex-data!!")

	frame := func(primAMoved bool) {
		ctl.BeginFrame()
		// Drawcall F: primitive C overlaps tiles 0 and 2.
		ctl.OnConstants(constantsF)
		ctl.OnPrimitive(primC, []int{0, 2}, 40)
		// Drawcall S: primitives A and B overlap tiles 1 and 3; A also
		// overlaps tile 2 (Figure 6's layout).
		ctl.OnConstants(constantsS)
		a := primA
		if primAMoved {
			a = []byte("primitive-A-attributes-MOVED-vertex-data-here!!!")
		}
		ctl.OnPrimitive(a, []int{1, 3, 2}, 40)
		ctl.OnPrimitive(primB, []int{1, 3}, 40)
	}

	report := func(label string) {
		fmt.Printf("%-28s", label)
		for tile := 0; tile < 4; tile++ {
			sigv := ctl.Unit().Buffer().Load(tile)
			match, valid := ctl.BaselineMatch(tile)
			state := "render (no baseline)"
			if valid && match {
				state = "SKIP"
			} else if valid {
				state = "render"
			}
			fmt.Printf("  tile%d=%08x %-7s", tile, sigv, state)
		}
		fmt.Println()
	}

	fmt.Println("Frame 0 and 1: warm-up (double-buffered, compare two frames back)")
	frame(false)
	report("frame 0")
	ctl.EndFrame()
	frame(false)
	report("frame 1")
	ctl.EndFrame()

	fmt.Println("\nFrame 2: identical inputs -> every tile redundant")
	frame(false)
	report("frame 2")
	ctl.EndFrame()

	fmt.Println("\nFrame 3: primitive A moved -> only its tiles (1, 2, 3) re-render")
	frame(true)
	report("frame 3")
	ctl.EndFrame()

	ctl.Unit().SyncStats()
	st := ctl.Unit().Stats
	fmt.Printf("\nSignature Unit activity: %d primitive blocks, %d constants blocks,\n",
		st.PrimBlocks, st.ConstBlocks)
	fmt.Printf("%d tile updates, %d CRC-LUT reads, %d cycles busy, %d stall cycles\n",
		st.TileUpdates, st.Compute.LUTAccesses+st.Accumulate.LUTAccesses,
		st.BusyCycles, st.StallCycles)
	fmt.Printf("Signature Buffer: %d bytes of on-chip SRAM for %d tiles\n",
		ctl.Unit().Buffer().SizeBytes(), ctl.Unit().Buffer().NumTiles())
}
