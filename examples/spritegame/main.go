// Spritegame: author a custom 2D workload against the public API — a match-3
// board where only two sprites animate — and watch Rendering Elimination
// skip everything except the tiles the animation touches. This is the
// puzzle-game scenario the paper's introduction motivates (ccs-class).
//
//	go run ./examples/spritegame
package main

import (
	"fmt"
	"log"

	"rendelim"
)

const (
	width  = 320
	height = 192
	frames = 24
)

func buildTrace() *rendelim.Trace {
	tr := &rendelim.Trace{
		Name:       "spritegame",
		Width:      width,
		Height:     height,
		ClearColor: rendelim.V4(0.05, 0.05, 0.1, 1),
		Programs:   rendelim.StandardPrograms(),
		Textures: []rendelim.TextureSpec{
			{Kind: rendelim.TexNoise, W: 256, H: 256, Cell: 16, Seed: 7,
				A: rendelim.V4(0.2, 0.25, 0.4, 1), Amp: 0.1},
			{Kind: rendelim.TexDisc, W: 32, H: 32,
				A: rendelim.V4(1, 1, 1, 1), B: rendelim.V4(0, 0, 0, 0)},
		},
	}

	for f := 0; f < frames; f++ {
		var cmds []rendelim.Command
		cmds = append(cmds, rendelim.MVPUniforms(rendelim.Ortho(0, width, 0, height, -1, 1)))
		cmds = append(cmds, rendelim.SetUniforms{First: 4, Values: []rendelim.Vec4{rendelim.V4(1, 1, 1, 1)}})

		// Background.
		cmds = append(cmds, rendelim.SetPipeline{
			VS: rendelim.ProgTransformVS, FS: rendelim.ProgTexFS,
		})
		cmds = append(cmds, rendelim.Draw{NumAttrs: 3,
			Data: rendelim.QuadVerts(nil, 0, 0, width, height, 0, rendelim.V4(1, 1, 1, 1))})

		// Sprite grid: one bouncing pair, everything else static.
		cmds = append(cmds, rendelim.SetPipeline{
			VS: rendelim.ProgTransformVS, FS: rendelim.ProgTexFS,
			Tex:   [4]rendelim.TextureID{1},
			Blend: rendelim.BlendAlpha,
		})
		var sprites []rendelim.Vec4
		bounce := float32((f % 8) * 2)
		for j := 0; j < 4; j++ {
			for i := 0; i < 6; i++ {
				x := 30 + float32(i)*45
				y := 30 + float32(j)*38
				if i == 2 && j == 1 {
					y += bounce
				}
				if i == 3 && j == 1 {
					y -= bounce
				}
				tint := rendelim.V4(0.4+0.6*float32(i)/6, 0.9-0.5*float32(j)/4, 0.8, 1)
				sprites = rendelim.QuadVerts(sprites, x, y, 28, 28, 0, tint)
			}
		}
		cmds = append(cmds, rendelim.Draw{NumAttrs: 3, Data: sprites})
		tr.Frames = append(tr.Frames, rendelim.Frame{Commands: cmds})
	}
	return tr
}

func main() {
	tr := buildTrace()
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}

	base, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.Baseline))
	if err != nil {
		log.Fatal(err)
	}
	re, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("custom trace %q: %d frames, %d tiles/frame\n",
		tr.Name, len(tr.Frames), re.Total.TilesTotal/uint64(len(tr.Frames)))
	fmt.Printf("tiles skipped by RE:  %.1f%%\n", re.Total.SkipFraction()*100)
	fmt.Printf("speedup:              %.2fx\n",
		float64(base.Total.TotalCycles())/float64(re.Total.TotalCycles()))
	fmt.Printf("per-frame skip profile:\n")
	for i, fs := range re.Frames {
		fmt.Printf("  frame %2d: %3d/%3d tiles skipped\n", i, fs.TilesSkipped, fs.TilesTotal)
		if i == 7 {
			fmt.Printf("  ... (%d more frames)\n", len(re.Frames)-8)
			break
		}
	}
}
