// Fpsgame: a continuously moving 3D camera (the mst-class worst case for
// Rendering Elimination) built against the public API. Demonstrates the
// paper's overhead claim: with no redundant tiles, RE costs well under 1%,
// and Transaction Elimination saves nothing either.
//
//	go run ./examples/fpsgame
package main

import (
	"fmt"
	"log"
	"math"

	"rendelim"
)

const (
	width  = 320
	height = 192
	frames = 16
)

func boxVerts(data []rendelim.Vec4, cx, cy, cz, ex, ey, ez float32) []rendelim.Vec4 {
	// Two visible faces are enough for the demo: front (+z) and top (+y).
	n1 := rendelim.V4(0, 0, 1, 0)
	quad := func(data []rendelim.Vec4, a, b, c, d rendelim.Vec4, n rendelim.Vec4) []rendelim.Vec4 {
		uv0, uv1, uv2, uv3 := rendelim.V4(0, 0, 0, 0), rendelim.V4(1, 0, 0, 0), rendelim.V4(1, 1, 0, 0), rendelim.V4(0, 1, 0, 0)
		data = append(data, a, n, uv0, b, n, uv1, c, n, uv2)
		return append(data, a, n, uv0, c, n, uv2, d, n, uv3)
	}
	data = quad(data,
		rendelim.V4(cx-ex, cy-ey, cz+ez, 1), rendelim.V4(cx+ex, cy-ey, cz+ez, 1),
		rendelim.V4(cx+ex, cy+ey, cz+ez, 1), rendelim.V4(cx-ex, cy+ey, cz+ez, 1), n1)
	n2 := rendelim.V4(0, 1, 0, 0)
	data = quad(data,
		rendelim.V4(cx-ex, cy+ey, cz+ez, 1), rendelim.V4(cx+ex, cy+ey, cz+ez, 1),
		rendelim.V4(cx+ex, cy+ey, cz-ez, 1), rendelim.V4(cx-ex, cy+ey, cz-ez, 1), n2)
	return data
}

func buildTrace() *rendelim.Trace {
	tr := &rendelim.Trace{
		Name:       "fpsgame",
		Width:      width,
		Height:     height,
		ClearColor: rendelim.V4(0.1, 0.1, 0.15, 1),
		Programs:   rendelim.StandardPrograms(),
		Textures: []rendelim.TextureSpec{
			{Kind: rendelim.TexNoise, W: 256, H: 256, Cell: 8, Seed: 3,
				A: rendelim.V4(0.5, 0.45, 0.4, 1), Amp: 0.2},
		},
	}

	for f := 0; f < frames; f++ {
		t := float64(f)
		eye := rendelim.V3(5*float32(math.Cos(t/10)), 2, 5*float32(math.Sin(t/10)))
		view := rendelim.LookAt(eye, rendelim.V3(0, 1, 0), rendelim.V3(0, 1, 0))
		proj := rendelim.Perspective(1.1, float32(width)/float32(height), 0.5, 100)
		mvp := proj.Mul(view)

		var cmds []rendelim.Command
		cmds = append(cmds, rendelim.MVPUniforms(mvp))
		cmds = append(cmds,
			rendelim.SetUniforms{First: 4, Values: []rendelim.Vec4{rendelim.V4(1, 1, 1, 1)}},
			rendelim.SetUniforms{First: 5, Values: []rendelim.Vec4{rendelim.V4(0.3, 0.9, 0.3, 0.3)}},
		)
		cmds = append(cmds, rendelim.SetPipeline{
			VS: rendelim.ProgTransformVS, FS: rendelim.ProgLambertFS,
			DepthTest: true, DepthWrite: true,
		})
		var data []rendelim.Vec4
		// Floor slab plus a ring of crates.
		data = boxVerts(data, 0, -0.5, 0, 10, 0.5, 10)
		for i := 0; i < 6; i++ {
			a := float64(i) / 6 * 2 * math.Pi
			data = boxVerts(data, 3*float32(math.Cos(a)), 0.5, 3*float32(math.Sin(a)), 0.5, 0.5, 0.5)
		}
		cmds = append(cmds, rendelim.Draw{NumAttrs: 3, Data: data})
		tr.Frames = append(tr.Frames, rendelim.Frame{Commands: cmds})
	}
	return tr
}

func main() {
	tr := buildTrace()
	if err := tr.Validate(); err != nil {
		log.Fatal(err)
	}
	results := map[string]rendelim.Result{}
	for _, tech := range []rendelim.Technique{rendelim.Baseline, rendelim.RE, rendelim.TE} {
		res, err := rendelim.Run(tr, rendelim.WithTechnique(tech))
		if err != nil {
			log.Fatal(err)
		}
		results[tech.String()] = res
	}

	base := float64(results["base"].Total.TotalCycles())
	fmt.Printf("continuously moving camera: %d frames\n", frames)
	fmt.Printf("tiles skipped by RE: %d of %d (%.2f%%) — only the sky/empty\n",
		results["re"].Total.TilesSkipped, results["re"].Total.TilesTotal,
		results["re"].Total.SkipFraction()*100)
	fmt.Println("tiles; every tile the moving geometry touches re-renders, because")
	fmt.Println("the camera matrix is part of each drawcall's signed constants.")
	for _, tech := range []string{"base", "re", "te"} {
		r := results[tech]
		fmt.Printf("%-5s cycles=%12d (%.4fx baseline)  energy=%.3f mJ\n",
			tech, r.Total.TotalCycles(),
			float64(r.Total.TotalCycles())/base,
			rendelim.ComputeEnergy(r).Total()*1e3)
	}
	// On the covered tiles RE is pure overhead; bound it by comparing the
	// cycles spent on *rendered* tiles only.
	fmt.Printf("fragments shaded: base=%d re=%d (identical: no fragment is skipped)\n",
		results["base"].Total.FragsShaded, results["re"].Total.FragsShaded)
}
