// Quickstart: build a benchmark trace, run it on the baseline GPU and under
// Rendering Elimination, and compare cycles, energy and traffic.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rendelim"
)

func main() {
	params := rendelim.DefaultParams()
	params.Frames = 30 // keep the example quick

	trace, err := rendelim.Build("ccs", params)
	if err != nil {
		log.Fatal(err)
	}

	base, err := rendelim.Run(trace, rendelim.WithTechnique(rendelim.Baseline))
	if err != nil {
		log.Fatal(err)
	}
	re, err := rendelim.Run(trace, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		log.Fatal(err)
	}

	baseE := rendelim.ComputeEnergy(base)
	reE := rendelim.ComputeEnergy(re)

	fmt.Printf("workload          %s (%dx%d, %d frames)\n",
		trace.Name, trace.Width, trace.Height, len(trace.Frames))
	fmt.Printf("baseline cycles   %d\n", base.Total.TotalCycles())
	fmt.Printf("RE cycles         %d\n", re.Total.TotalCycles())
	fmt.Printf("speedup           %.2fx\n",
		float64(base.Total.TotalCycles())/float64(re.Total.TotalCycles()))
	fmt.Printf("tiles skipped     %.1f%% of %d\n",
		re.Total.SkipFraction()*100, re.Total.TilesTotal)
	fmt.Printf("fragments shaded  %d -> %d\n", base.Total.FragsShaded, re.Total.FragsShaded)
	fmt.Printf("DRAM traffic      %.2f MB -> %.2f MB\n",
		float64(base.Total.TotalTraffic())/1e6, float64(re.Total.TotalTraffic())/1e6)
	fmt.Printf("energy            %.2f mJ -> %.2f mJ (-%.0f%%)\n",
		baseE.Total()*1e3, reE.Total()*1e3, (1-reE.Total()/baseE.Total())*100)
}
