module rendelim

go 1.22
