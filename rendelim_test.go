package rendelim_test

import (
	"bytes"
	"testing"

	"rendelim"
)

func tinyParams() rendelim.Params {
	p := rendelim.DefaultParams()
	p.Width, p.Height, p.Frames = 128, 96, 6
	return p
}

func TestPublicBuildAndRun(t *testing.T) {
	tr, err := rendelim.Build("ccs", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	base, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.Baseline))
	if err != nil {
		t.Fatal(err)
	}
	re, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	if re.Total.TotalCycles() >= base.Total.TotalCycles() {
		t.Fatal("RE should beat baseline on ccs")
	}
	if e := rendelim.ComputeEnergy(base); e.Total() <= 0 {
		t.Fatal("energy model returned nothing")
	}
}

func TestPublicBuildUnknownAlias(t *testing.T) {
	if _, err := rendelim.Build("nope", tinyParams()); err == nil {
		t.Fatal("unknown alias should error")
	}
}

func TestBenchmarkListing(t *testing.T) {
	if len(rendelim.Benchmarks()) != 10 {
		t.Fatal("suite should have 10 entries")
	}
	if len(rendelim.ExtraBenchmarks()) != 2 {
		t.Fatal("extras should have 2 entries")
	}
}

func TestTraceEncodeDecodeViaPublicAPI(t *testing.T) {
	tr, err := rendelim.Build("cde", tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rendelim.EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := rendelim.DecodeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The decoded trace must simulate to identical cycle counts.
	a, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rendelim.Run(got, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	if a.Total.TotalCycles() != b.Total.TotalCycles() ||
		a.Total.TilesSkipped != b.Total.TilesSkipped {
		t.Fatal("decoded trace simulates differently")
	}
}

func TestCustomTraceViaPublicAPI(t *testing.T) {
	tr := &rendelim.Trace{
		Name: "custom", Width: 64, Height: 64,
		Programs: rendelim.StandardPrograms(),
		Textures: []rendelim.TextureSpec{
			{Kind: rendelim.TexChecker, W: 16, H: 16, Cell: 4,
				A: rendelim.V4(1, 0, 0, 1), B: rendelim.V4(0, 0, 1, 1)},
		},
	}
	for f := 0; f < 5; f++ {
		cmds := []rendelim.Command{
			rendelim.MVPUniforms(rendelim.Ortho(0, 64, 0, 64, -1, 1)),
			rendelim.SetUniforms{First: 4, Values: []rendelim.Vec4{rendelim.V4(1, 1, 1, 1)}},
			rendelim.SetPipeline{VS: rendelim.ProgTransformVS, FS: rendelim.ProgTexFS},
			rendelim.Draw{NumAttrs: 3, Data: rendelim.QuadVerts(nil, 0, 0, 64, 64, 0, rendelim.V4(1, 1, 1, 1))},
		}
		tr.Frames = append(tr.Frames, rendelim.Frame{Commands: cmds})
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := rendelim.Run(tr, rendelim.WithTechnique(rendelim.RE))
	if err != nil {
		t.Fatal(err)
	}
	// Identical frames: everything after warm-up skips.
	if res.Frames[4].TilesSkipped != res.Frames[4].TilesTotal {
		t.Fatalf("static custom trace should fully skip, got %d/%d",
			res.Frames[4].TilesSkipped, res.Frames[4].TilesTotal)
	}
	if len(rendelim.RE.SkippedStages()) == 0 {
		t.Fatal("skipped stages missing")
	}
}
